package wire

import (
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// Message type IDs. Pinned by testdata/wire.golden: append new values, never
// renumber. 1–39 is the core mesh protocol; 40+ is the multi-process cluster
// protocol spoken by cmd/tapestry-node.
const (
	TPing             Type = 1
	TAck              Type = 2
	TRouteStep        Type = 3
	TMatchQueryReq    Type = 4
	TMatchQueryResp   Type = 5
	TTableBandReq     Type = 6
	TTableBandResp    Type = 7
	TShareReq         Type = 8
	TShareResp        Type = 9
	TLocateStep       Type = 10
	TVerifyReq        Type = 11
	TVerifyResp       Type = 12
	TDeleteBack       Type = 13
	TBackAdd          Type = 14
	TBackRemove       Type = 15
	TMcastStep        Type = 16
	TMcastNotify      Type = 17
	TJoinSnapshotReq  Type = 18
	TJoinSnapshotResp Type = 19
	TReacquireReq     Type = 20
	TCaravanStep      Type = 21
	TLeaveNotify      Type = 22
	TNodeDeleted      Type = 23
	TDropLinks        Type = 24
	TLocalStep        Type = 25
	TPtrForward       Type = 26
	TPublishReq       Type = 27

	TClusterInstall Type = 40
	TClusterAck     Type = 41
	TClusterServe   Type = 42
	TClusterPublish Type = 43
	TClusterPubDone Type = 44
	TClusterLocate  Type = 45
	TClusterFound   Type = 46
)

// String names the type for diagnostics and the golden format test.
func (t Type) String() string {
	switch t {
	case TPing:
		return "Ping"
	case TAck:
		return "Ack"
	case TRouteStep:
		return "RouteStep"
	case TMatchQueryReq:
		return "MatchQueryReq"
	case TMatchQueryResp:
		return "MatchQueryResp"
	case TTableBandReq:
		return "TableBandReq"
	case TTableBandResp:
		return "TableBandResp"
	case TShareReq:
		return "ShareReq"
	case TShareResp:
		return "ShareResp"
	case TLocateStep:
		return "LocateStep"
	case TVerifyReq:
		return "VerifyReq"
	case TVerifyResp:
		return "VerifyResp"
	case TDeleteBack:
		return "DeleteBack"
	case TBackAdd:
		return "BackAdd"
	case TBackRemove:
		return "BackRemove"
	case TMcastStep:
		return "McastStep"
	case TMcastNotify:
		return "McastNotify"
	case TJoinSnapshotReq:
		return "JoinSnapshotReq"
	case TJoinSnapshotResp:
		return "JoinSnapshotResp"
	case TReacquireReq:
		return "ReacquireReq"
	case TCaravanStep:
		return "CaravanStep"
	case TLeaveNotify:
		return "LeaveNotify"
	case TNodeDeleted:
		return "NodeDeleted"
	case TDropLinks:
		return "DropLinks"
	case TLocalStep:
		return "LocalStep"
	case TPtrForward:
		return "PtrForward"
	case TPublishReq:
		return "PublishReq"
	case TClusterInstall:
		return "ClusterInstall"
	case TClusterAck:
		return "ClusterAck"
	case TClusterServe:
		return "ClusterServe"
	case TClusterPublish:
		return "ClusterPublish"
	case TClusterPubDone:
		return "ClusterPubDone"
	case TClusterLocate:
		return "ClusterLocate"
	case TClusterFound:
		return "ClusterFound"
	default:
		return "Unknown"
	}
}

// Types lists every defined message type in wire order (the golden test and
// fuzz corpus iterate it).
func Types() []Type {
	return []Type{
		TPing, TAck, TRouteStep, TMatchQueryReq, TMatchQueryResp,
		TTableBandReq, TTableBandResp, TShareReq, TShareResp, TLocateStep,
		TVerifyReq, TVerifyResp, TDeleteBack, TBackAdd, TBackRemove,
		TMcastStep, TMcastNotify, TJoinSnapshotReq, TJoinSnapshotResp,
		TReacquireReq, TCaravanStep, TLeaveNotify, TNodeDeleted, TDropLinks,
		TLocalStep, TPtrForward, TPublishReq,
		TClusterInstall, TClusterAck, TClusterServe, TClusterPublish,
		TClusterPubDone, TClusterLocate, TClusterFound,
	}
}

// New returns a fresh zero message of the given type, or nil if t is unknown.
func New(t Type) Msg {
	switch t {
	case TPing:
		return &Ping{}
	case TAck:
		return &Ack{}
	case TRouteStep:
		return &RouteStep{}
	case TMatchQueryReq:
		return &MatchQueryReq{}
	case TMatchQueryResp:
		return &MatchQueryResp{}
	case TTableBandReq:
		return &TableBandReq{}
	case TTableBandResp:
		return &TableBandResp{}
	case TShareReq:
		return &ShareReq{}
	case TShareResp:
		return &ShareResp{}
	case TLocateStep:
		return &LocateStep{}
	case TVerifyReq:
		return &VerifyReq{}
	case TVerifyResp:
		return &VerifyResp{}
	case TDeleteBack:
		return &DeleteBack{}
	case TBackAdd:
		return &BackAdd{}
	case TBackRemove:
		return &BackRemove{}
	case TMcastStep:
		return &McastStep{}
	case TMcastNotify:
		return &McastNotify{}
	case TJoinSnapshotReq:
		return &JoinSnapshotReq{}
	case TJoinSnapshotResp:
		return &JoinSnapshotResp{}
	case TReacquireReq:
		return &ReacquireReq{}
	case TCaravanStep:
		return &CaravanStep{}
	case TLeaveNotify:
		return &LeaveNotify{}
	case TNodeDeleted:
		return &NodeDeleted{}
	case TDropLinks:
		return &DropLinks{}
	case TLocalStep:
		return &LocalStep{}
	case TPtrForward:
		return &PtrForward{}
	case TPublishReq:
		return &PublishReq{}
	case TClusterInstall:
		return &ClusterInstall{}
	case TClusterAck:
		return &ClusterAck{}
	case TClusterServe:
		return &ClusterServe{}
	case TClusterPublish:
		return &ClusterPublish{}
	case TClusterPubDone:
		return &ClusterPubDone{}
	case TClusterLocate:
		return &ClusterLocate{}
	case TClusterFound:
		return &ClusterFound{}
	default:
		return nil
	}
}

// RouteOp tags the purpose of a routing-walk step (diagnostics only; hop
// processing is identical).
type RouteOp byte

const (
	RouteOpRoute RouteOp = iota
	RouteOpPublish
	RouteOpUnpublish
)

// Slot names one routing-table slot (level, digit) on the wire.
type Slot struct {
	Level int
	Digit ids.Digit
}

// LeveledEntry pairs a routing entry with the level it lives at.
type LeveledEntry struct {
	Level int
	E     route.Entry
}

// PubRec is one soft-state pointer republish record riding a caravan
// (Section 6.5): where the pointer chain for GUID stood when the batch left
// its server.
type PubRec struct {
	GUID     ids.ID
	Key      ids.ID
	Level    int
	PrevID   ids.ID
	PrevAddr netsim.Addr
	Hops     int
	Salt     int // index of the salted root Key = Salt(GUID, Salt)
}

func (e *Enc) pubRec(r PubRec) {
	e.ID(r.GUID)
	e.ID(r.Key)
	e.Int(r.Level)
	e.ID(r.PrevID)
	e.Addr(r.PrevAddr)
	e.Int(r.Hops)
	e.Int(r.Salt)
}

func (d *Dec) pubRec() PubRec {
	var r PubRec
	r.GUID = d.ID()
	r.Key = d.ID()
	r.Level = d.Int()
	r.PrevID = d.ID()
	r.PrevAddr = d.Addr()
	r.Hops = d.Int()
	r.Salt = d.Int()
	return r
}

// Ping is the empty liveness probe (sweep, reorder); Ack is its reply and the
// generic empty response of walk-step RPCs.
type Ping struct{}

func (*Ping) WireType() Type  { return TPing }
func (*Ping) EncodeTo(*Enc)   {}
func (*Ping) DecodeFrom(*Dec) {}

// Ack is the empty acknowledgment.
type Ack struct{}

func (*Ack) WireType() Type  { return TAck }
func (*Ack) EncodeTo(*Enc)   {}
func (*Ack) DecodeFrom(*Dec) {}

// RouteStep is one hop of a routeToKey walk (Section 2.3): route toward Key,
// currently matched to Level digits. Op records whether the walk is a plain
// route, a publish path, or an unpublish path.
type RouteStep struct {
	Key   ids.ID
	Level int
	Op    RouteOp
}

func (*RouteStep) WireType() Type { return TRouteStep }
func (m *RouteStep) EncodeTo(e *Enc) {
	e.ID(m.Key)
	e.Int(m.Level)
	e.U8(byte(m.Op))
}
func (m *RouteStep) DecodeFrom(d *Dec) {
	m.Key = d.ID()
	m.Level = d.Int()
	m.Op = RouteOp(d.U8())
}

// MatchQueryReq asks an informant for its entries at (Level, Digit) provided
// the informant shares at least Level digits with Origin (the §5.2 repair
// scan).
type MatchQueryReq struct {
	Origin ids.ID
	Level  int
	Digit  ids.Digit
}

func (*MatchQueryReq) WireType() Type { return TMatchQueryReq }
func (m *MatchQueryReq) EncodeTo(e *Enc) {
	e.ID(m.Origin)
	e.Int(m.Level)
	e.U8(m.Digit)
}
func (m *MatchQueryReq) DecodeFrom(d *Dec) {
	m.Origin = d.ID()
	m.Level = d.Int()
	m.Digit = d.U8()
}

// MatchQueryResp carries the informant's matching entries.
type MatchQueryResp struct {
	Entries []route.Entry
}

func (*MatchQueryResp) WireType() Type    { return TMatchQueryResp }
func (m *MatchQueryResp) EncodeTo(e *Enc) { e.Entries(m.Entries) }
func (m *MatchQueryResp) DecodeFrom(d *Dec) {
	m.Entries = d.Entries(m.Entries)
}

// TableBandReq asks a peer for its forward and backward links in levels
// [Floor, Fold) — the §4.2 nearest-neighbor engine's per-peer query. Fold
// of -1 means "everything from Floor up".
type TableBandReq struct {
	Floor int
	Fold  int
}

func (*TableBandReq) WireType() Type { return TTableBandReq }
func (m *TableBandReq) EncodeTo(e *Enc) {
	e.Int(m.Floor)
	e.Int(m.Fold)
}
func (m *TableBandReq) DecodeFrom(d *Dec) {
	m.Floor = d.Int()
	m.Fold = d.Int()
}

// TableBandResp carries the requested band of links.
type TableBandResp struct {
	Entries []route.Entry
}

func (*TableBandResp) WireType() Type    { return TTableBandResp }
func (m *TableBandResp) EncodeTo(e *Enc) { e.Entries(m.Entries) }
func (m *TableBandResp) DecodeFrom(d *Dec) {
	m.Entries = d.Entries(m.Entries)
}

// ShareReq offers a row of routing entries to a neighbor, who re-measures
// them from its own vantage point and adopts improvements (§6.4 local
// information sharing).
type ShareReq struct {
	Entries []route.Entry
}

func (*ShareReq) WireType() Type    { return TShareReq }
func (m *ShareReq) EncodeTo(e *Enc) { e.Entries(m.Entries) }
func (m *ShareReq) DecodeFrom(d *Dec) {
	m.Entries = d.Entries(m.Entries)
}

// ShareResp reports how many offered entries the recipient adopted.
type ShareResp struct {
	Adopted int
}

func (*ShareResp) WireType() Type    { return TShareResp }
func (m *ShareResp) EncodeTo(e *Enc) { e.Int(m.Adopted) }
func (m *ShareResp) DecodeFrom(d *Dec) {
	m.Adopted = d.Int()
}

// LocateStep is one hop of a Locate walk toward GUID's root (Section 2.2):
// Key is the salted root identifier being routed to (Key = Salt(GUID, Salt)),
// Hops the distance walked so far.
type LocateStep struct {
	GUID  ids.ID
	Key   ids.ID
	Level int
	Hops  int
	Salt  int
}

func (*LocateStep) WireType() Type { return TLocateStep }
func (m *LocateStep) EncodeTo(e *Enc) {
	e.ID(m.GUID)
	e.ID(m.Key)
	e.Int(m.Level)
	e.Int(m.Hops)
	e.Int(m.Salt)
}
func (m *LocateStep) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
	m.Key = d.ID()
	m.Level = d.Int()
	m.Hops = d.Int()
	m.Salt = d.Int()
}

// VerifyReq asks a storage server whether it still serves a replica of GUID
// (the liveness check a pointer holder runs before answering a query).
type VerifyReq struct {
	GUID ids.ID
}

func (*VerifyReq) WireType() Type    { return TVerifyReq }
func (m *VerifyReq) EncodeTo(e *Enc) { e.ID(m.GUID) }
func (m *VerifyReq) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
}

// VerifyResp answers a VerifyReq.
type VerifyResp struct {
	Serves bool
}

func (*VerifyResp) WireType() Type    { return TVerifyResp }
func (m *VerifyResp) EncodeTo(e *Enc) { e.Bool(m.Serves) }
func (m *VerifyResp) DecodeFrom(d *Dec) {
	m.Serves = d.Bool()
}

// DeleteBack is one step of the Figure 9 backward deletion walk: remove the
// pointer for (GUID, Server) along the publish path of Key, stopping at
// StopAt.
type DeleteBack struct {
	GUID   ids.ID
	Key    ids.ID
	Server ids.ID
	StopAt ids.ID
}

func (*DeleteBack) WireType() Type { return TDeleteBack }
func (m *DeleteBack) EncodeTo(e *Enc) {
	e.ID(m.GUID)
	e.ID(m.Key)
	e.ID(m.Server)
	e.ID(m.StopAt)
}
func (m *DeleteBack) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
	m.Key = d.ID()
	m.Server = d.ID()
	m.StopAt = d.ID()
}

// BackAdd registers the sender as a level-Level backpointer holder at the
// receiver: "From now routes through you".
type BackAdd struct {
	Level int
	From  route.Entry
}

func (*BackAdd) WireType() Type { return TBackAdd }
func (m *BackAdd) EncodeTo(e *Enc) {
	e.Int(m.Level)
	e.Entry(m.From)
}
func (m *BackAdd) DecodeFrom(d *Dec) {
	m.Level = d.Int()
	m.From = d.Entry()
}

// BackRemove retracts a previously registered backpointer.
type BackRemove struct {
	Level int
	ID    ids.ID
}

func (*BackRemove) WireType() Type { return TBackRemove }
func (m *BackRemove) EncodeTo(e *Enc) {
	e.Int(m.Level)
	e.ID(m.ID)
}
func (m *BackRemove) DecodeFrom(d *Dec) {
	m.Level = d.Int()
	m.ID = d.ID()
}

// McastStep delivers an acknowledged-multicast visit (Section 4.1): P is the
// prefix this arm covers, Root the multicast's α. For insertion multicasts,
// NewNode is the inserting node and HoleLevel is |α|.
type McastStep struct {
	P         ids.Prefix
	Root      ids.Prefix
	NewNode   route.Entry
	HoleLevel int
}

func (*McastStep) WireType() Type { return TMcastStep }
func (m *McastStep) EncodeTo(e *Enc) {
	e.Prefix(m.P)
	e.Prefix(m.Root)
	e.Entry(m.NewNode)
	e.Int(m.HoleLevel)
}
func (m *McastStep) DecodeFrom(d *Dec) {
	m.P = d.Prefix()
	m.Root = d.Prefix()
	m.NewNode = d.Entry()
	m.HoleLevel = d.Int()
}

// McastNotify tells an inserting node that the sender (Me) fills watched
// slots it still lacks (Figure 11, CheckForNodesAndSend).
type McastNotify struct {
	Me    route.Entry
	Slots []Slot
}

func (*McastNotify) WireType() Type { return TMcastNotify }
func (m *McastNotify) EncodeTo(e *Enc) {
	e.Entry(m.Me)
	e.Uvarint(uint64(len(m.Slots)))
	for _, s := range m.Slots {
		e.Int(s.Level)
		e.U8(s.Digit)
	}
}
func (m *McastNotify) DecodeFrom(d *Dec) {
	m.Me = d.Entry()
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("slot count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.Slots = m.Slots[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Slots = append(m.Slots, Slot{Level: d.Int(), Digit: d.U8()})
	}
}

// JoinSnapshotReq is the join step-2 RPC to the surrogate: pin the new node
// at PinLevel and return a copy of your routing table as the preliminary
// table (Section 4.2).
type JoinSnapshotReq struct {
	NewID    ids.ID
	NewAddr  netsim.Addr
	PinLevel int
}

func (*JoinSnapshotReq) WireType() Type { return TJoinSnapshotReq }
func (m *JoinSnapshotReq) EncodeTo(e *Enc) {
	e.ID(m.NewID)
	e.Addr(m.NewAddr)
	e.Int(m.PinLevel)
}
func (m *JoinSnapshotReq) DecodeFrom(d *Dec) {
	m.NewID = d.ID()
	m.NewAddr = d.Addr()
	m.PinLevel = d.Int()
}

// JoinSnapshotResp carries the surrogate's table copy, flattened in
// ascending (level, digit) order.
type JoinSnapshotResp struct {
	Rows []LeveledEntry
}

func (*JoinSnapshotResp) WireType() Type { return TJoinSnapshotResp }
func (m *JoinSnapshotResp) EncodeTo(e *Enc) {
	e.Uvarint(uint64(len(m.Rows)))
	for _, r := range m.Rows {
		e.Int(r.Level)
		e.Entry(r.E)
	}
}
func (m *JoinSnapshotResp) DecodeFrom(d *Dec) {
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("row count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.Rows = m.Rows[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Rows = append(m.Rows, LeveledEntry{Level: d.Int(), E: d.Entry()})
	}
}

// ReacquireReq asks a node's current surrogate to run the full
// nearest-neighbor reacquisition multicast on the sender's behalf (§6.4).
type ReacquireReq struct{}

func (*ReacquireReq) WireType() Type  { return TReacquireReq }
func (*ReacquireReq) EncodeTo(*Enc)   {}
func (*ReacquireReq) DecodeFrom(*Dec) {}

// CaravanStep is one hop of a §6.5 republish caravan: the batch of pointer
// records from Server that share their next publish-path hop.
type CaravanStep struct {
	Server     ids.ID
	ServerAddr netsim.Addr
	Recs       []PubRec
}

func (*CaravanStep) WireType() Type { return TCaravanStep }
func (m *CaravanStep) EncodeTo(e *Enc) {
	e.ID(m.Server)
	e.Addr(m.ServerAddr)
	e.Uvarint(uint64(len(m.Recs)))
	for _, r := range m.Recs {
		e.pubRec(r)
	}
}
func (m *CaravanStep) DecodeFrom(d *Dec) {
	m.Server = d.ID()
	m.ServerAddr = d.Addr()
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("record count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.Recs = m.Recs[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Recs = append(m.Recs, d.pubRec())
	}
}

// LeaveNotify is the §5.1 voluntary-delete notification: Leaver is departing
// and offers Replacements for the slot at Level.
type LeaveNotify struct {
	Leaver       ids.ID
	Level        int
	Replacements []route.Entry
}

func (*LeaveNotify) WireType() Type { return TLeaveNotify }
func (m *LeaveNotify) EncodeTo(e *Enc) {
	e.ID(m.Leaver)
	e.Int(m.Level)
	e.Entries(m.Replacements)
}
func (m *LeaveNotify) DecodeFrom(d *Dec) {
	m.Leaver = d.ID()
	m.Level = d.Int()
	m.Replacements = d.Entries(m.Replacements)
}

// NodeDeleted tells a backpointer holder that the node it routes through is
// gone (§5.1 phase 3).
type NodeDeleted struct {
	ID ids.ID
}

func (*NodeDeleted) WireType() Type    { return TNodeDeleted }
func (m *NodeDeleted) EncodeTo(e *Enc) { e.ID(m.ID) }
func (m *NodeDeleted) DecodeFrom(d *Dec) {
	m.ID = d.ID()
}

// DropLinks tells a forward neighbor to remove every link to ID (§5.1
// phase 3, the forward direction).
type DropLinks struct {
	ID ids.ID
}

func (*DropLinks) WireType() Type    { return TDropLinks }
func (m *DropLinks) EncodeTo(e *Enc) { e.ID(m.ID) }
func (m *DropLinks) DecodeFrom(d *Dec) {
	m.ID = d.ID()
}

// LocalStep is one hop of a §6.3 locality-constrained walk: route toward Key
// without leaving Region.
type LocalStep struct {
	Key    ids.ID
	Level  int
	Region int
}

func (*LocalStep) WireType() Type { return TLocalStep }
func (m *LocalStep) EncodeTo(e *Enc) {
	e.ID(m.Key)
	e.Int(m.Level)
	e.Int(m.Region)
}
func (m *LocalStep) DecodeFrom(d *Dec) {
	m.Key = d.ID()
	m.Level = d.Int()
	m.Region = d.Int()
}

// PtrForward is one hop of an object-pointer move (Section 4.2's
// "move some object pointers" and the §5.1 leave handoff): re-walk the
// publish path for (GUID, Server) from Level.
type PtrForward struct {
	GUID       ids.ID
	Key        ids.ID
	Server     ids.ID
	ServerAddr netsim.Addr
	Level      int
	PrevID     ids.ID
	PrevAddr   netsim.Addr
}

func (*PtrForward) WireType() Type { return TPtrForward }
func (m *PtrForward) EncodeTo(e *Enc) {
	e.ID(m.GUID)
	e.ID(m.Key)
	e.ID(m.Server)
	e.Addr(m.ServerAddr)
	e.Int(m.Level)
	e.ID(m.PrevID)
	e.Addr(m.PrevAddr)
}
func (m *PtrForward) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
	m.Key = d.ID()
	m.Server = d.ID()
	m.ServerAddr = d.Addr()
	m.Level = d.Int()
	m.PrevID = d.ID()
	m.PrevAddr = d.Addr()
}

// PublishReq asks the receiver to (re-)announce GUID. With Adopt set the
// receiver first records itself as a replica server for GUID — the k-replica
// placement handoff — and then publishes along every salted root. Without
// Adopt it republishes only toward the salted roots listed in Salts, which is
// how read-repair refills a root whose publish path decayed. The reply is an
// Ack.
type PublishReq struct {
	GUID  ids.ID
	Adopt bool
	Salts []int
}

func (*PublishReq) WireType() Type { return TPublishReq }
func (m *PublishReq) EncodeTo(e *Enc) {
	e.ID(m.GUID)
	e.Bool(m.Adopt)
	e.Uvarint(uint64(len(m.Salts)))
	for _, s := range m.Salts {
		e.Int(s)
	}
}
func (m *PublishReq) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
	m.Adopt = d.Bool()
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("salt count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.Salts = m.Salts[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Salts = append(m.Salts, d.Int())
	}
}
