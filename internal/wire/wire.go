// Package wire defines the Tapestry node-to-node message catalog and its
// binary encoding. Every RPC the core mesh performs — routing-walk hops,
// publish/locate traffic, acknowledged-multicast steps, join snapshots,
// backpointer notifications, maintenance probes and republish caravans — has
// an explicit request (and, where the protocol answers, response) struct
// here, so the same overlay logic can run over shared memory, a codec
// loopback, or real sockets.
//
// Encoding rules (little-endian throughout):
//
//   - unsigned integers: LEB128 uvarint
//   - signed integers (levels, hops, addresses): zigzag varint
//   - float64 (distances): 8-byte IEEE 754 bits
//   - ids.ID / ids.Prefix: u8 digit count followed by one byte per digit
//   - route.Entry: ID, zigzag addr, float64 distance, u8 flag bits
//     (bit 0 pinned, bit 1 leaving)
//   - lists: uvarint count, then the elements back to back
//
// A framed message is [u32 LE payload length][u8 type][payload]. Type IDs are
// pinned forever (see testdata/wire.golden); new messages append, old ones
// are never renumbered.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// Type identifies a message on the wire. Values are part of the format.
type Type byte

// Msg is one wire message. EncodeTo must write exactly what DecodeFrom reads;
// DecodeFrom overwrites every field (reusing slice capacity where it can), so
// a recycled struct never leaks state between messages.
type Msg interface {
	WireType() Type
	EncodeTo(*Enc)
	DecodeFrom(*Dec)
}

// maxDigits bounds ID/prefix digit counts on decode (ids.Spec caps Digits at
// 64); maxFrame bounds a framed message read from an untrusted stream.
const (
	maxDigits = 64
	maxFrame  = 1 << 26
)

// Enc is an append-only encoder. The zero value is ready to use; Reset keeps
// the buffer's capacity so steady-state encoding does not allocate.
type Enc struct {
	b []byte
}

// Reset empties the buffer, keeping capacity.
func (e *Enc) Reset() { e.b = e.b[:0] }

// Bytes returns the encoded payload (valid until the next Reset).
func (e *Enc) Bytes() []byte { return e.b }

// U8 appends one raw byte.
func (e *Enc) U8(v byte) { e.b = append(e.b, v) }

// Uvarint appends an unsigned LEB128 varint.
func (e *Enc) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Int appends a signed zigzag varint.
func (e *Enc) Int(v int) { e.b = binary.AppendVarint(e.b, int64(v)) }

// Bool appends a 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends the 8 IEEE 754 bytes of v, little-endian.
func (e *Enc) F64(v float64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, math.Float64bits(v))
}

// String appends a length-prefixed byte string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// ID appends an identifier: digit count, then raw digit bytes.
func (e *Enc) ID(id ids.ID) {
	e.U8(byte(id.Len()))
	for i := 0; i < id.Len(); i++ {
		e.U8(id.Digit(i))
	}
}

// Prefix appends a prefix with the same shape as ID.
func (e *Enc) Prefix(p ids.Prefix) {
	e.U8(byte(p.Len()))
	for i := 0; i < p.Len(); i++ {
		e.U8(p.Digit(i))
	}
}

// Addr appends a network address as a zigzag varint (addresses are small
// non-negative integers in the simulator, but -1 sentinels must survive).
func (e *Enc) Addr(a netsim.Addr) { e.Int(int(a)) }

// Entry appends one routing-table entry.
func (e *Enc) Entry(en route.Entry) {
	e.ID(en.ID)
	e.Addr(en.Addr)
	e.F64(en.Distance)
	var flags byte
	if en.Pinned {
		flags |= 1
	}
	if en.Leaving {
		flags |= 2
	}
	e.U8(flags)
}

// Entries appends a length-prefixed entry list.
func (e *Enc) Entries(list []route.Entry) {
	e.Uvarint(uint64(len(list)))
	for _, en := range list {
		e.Entry(en)
	}
}

// Dec consumes an encoded payload. The first malformed read latches an error
// and turns every later read into a zero-value no-op, so message DecodeFrom
// methods can decode unconditionally and check Err once.
type Dec struct {
	b   []byte
	off int
	err error
}

// NewDec returns a decoder over b (which is not copied).
func NewDec(b []byte) *Dec { return &Dec{b: b} }

// Reset re-points the decoder at b and clears any latched error.
func (d *Dec) Reset(b []byte) { d.b, d.off, d.err = b, 0, nil }

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Len returns the number of unconsumed bytes.
func (d *Dec) Len() int { return len(d.b) - d.off }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// U8 reads one raw byte.
func (d *Dec) U8() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated byte at offset %d", d.off)
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

// Uvarint reads an unsigned LEB128 varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// Int reads a signed zigzag varint.
func (d *Dec) Int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return int(v)
}

// Bool reads a 0/1 byte (any nonzero byte decodes as true).
func (d *Dec) Bool() bool { return d.U8() != 0 }

// F64 reads 8 IEEE 754 bytes.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// String reads a length-prefixed byte string.
func (d *Dec) String() string {
	n := d.Uvarint()
	if d.err != nil {
		return ""
	}
	if n > uint64(d.Len()) {
		d.fail("string length %d exceeds remaining %d bytes", n, d.Len())
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// digits reads a count-prefixed digit run shared by ID and Prefix.
func (d *Dec) digits() []ids.Digit {
	n := int(d.U8())
	if d.err != nil {
		return nil
	}
	if n > maxDigits {
		d.fail("digit count %d exceeds %d", n, maxDigits)
		return nil
	}
	if n > d.Len() {
		d.fail("truncated digits: want %d, have %d", n, d.Len())
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	for i, dg := range out {
		if dg >= maxDigits {
			d.fail("digit %d at position %d exceeds max base %d", dg, i, maxDigits)
			return nil
		}
	}
	return out
}

// ID reads an identifier.
func (d *Dec) ID() ids.ID {
	dg := d.digits()
	if d.err != nil {
		return ids.ID{}
	}
	return ids.FromDigits(dg)
}

// Prefix reads a prefix.
func (d *Dec) Prefix() ids.Prefix {
	dg := d.digits()
	if d.err != nil {
		return ids.Prefix{}
	}
	return ids.PrefixFromDigits(dg)
}

// Addr reads a network address.
func (d *Dec) Addr() netsim.Addr { return netsim.Addr(d.Int()) }

// Entry reads one routing-table entry.
func (d *Dec) Entry() route.Entry {
	var en route.Entry
	en.ID = d.ID()
	en.Addr = d.Addr()
	en.Distance = d.F64()
	flags := d.U8()
	en.Pinned = flags&1 != 0
	en.Leaving = flags&2 != 0
	return en
}

// Entries reads a length-prefixed entry list into dst's capacity.
func (d *Dec) Entries(dst []route.Entry) []route.Entry {
	n := d.Uvarint()
	if d.err != nil {
		return dst[:0]
	}
	// Each entry is at least 11 bytes; a cheap bound that defuses hostile
	// counts before allocation.
	if n > uint64(d.Len()) {
		d.fail("entry count %d exceeds remaining %d bytes", n, d.Len())
		return dst[:0]
	}
	dst = dst[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		dst = append(dst, d.Entry())
	}
	return dst
}

// AppendFrame appends m to dst as one framed message.
func AppendFrame(dst []byte, m Msg) []byte {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length backpatched below
	dst = append(dst, byte(m.WireType()))
	e := Enc{b: dst}
	m.EncodeTo(&e)
	dst = e.b
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

// DecodeFrame parses one framed message from the front of b, allocating the
// struct via New. It returns the message and the total bytes consumed.
func DecodeFrame(b []byte) (Msg, int, error) {
	if len(b) < 5 {
		return nil, 0, fmt.Errorf("wire: frame header truncated (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 || n > maxFrame {
		return nil, 0, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if uint64(len(b)-4) < uint64(n) {
		return nil, 0, fmt.Errorf("wire: frame truncated: want %d bytes, have %d", n, len(b)-4)
	}
	m := New(Type(b[4]))
	if m == nil {
		return nil, 0, fmt.Errorf("wire: unknown message type %d", b[4])
	}
	d := Dec{b: b[5 : 4+n]}
	m.DecodeFrom(&d)
	if d.err != nil {
		return nil, 0, d.err
	}
	if d.Len() != 0 {
		return nil, 0, fmt.Errorf("wire: %d trailing bytes after %T", d.Len(), m)
	}
	return m, 4 + int(n), nil
}

// DecodeFrameInto parses one framed message from the front of b into m,
// failing if the frame's type differs from m's. It returns the bytes
// consumed. This is the zero-allocation path transports use with recycled
// message structs.
func DecodeFrameInto(b []byte, m Msg) (int, error) {
	if len(b) < 5 {
		return 0, fmt.Errorf("wire: frame header truncated (%d bytes)", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 1 || n > maxFrame {
		return 0, fmt.Errorf("wire: frame length %d out of range", n)
	}
	if uint64(len(b)-4) < uint64(n) {
		return 0, fmt.Errorf("wire: frame truncated: want %d bytes, have %d", n, len(b)-4)
	}
	if Type(b[4]) != m.WireType() {
		return 0, fmt.Errorf("wire: frame type %d, want %d (%T)", b[4], m.WireType(), m)
	}
	d := Dec{b: b[5 : 4+n]}
	m.DecodeFrom(&d)
	if d.err != nil {
		return 0, d.err
	}
	if d.Len() != 0 {
		return 0, fmt.Errorf("wire: %d trailing bytes after %T", d.Len(), m)
	}
	return 4 + int(n), nil
}

// WriteMsg frames m onto w using buf as scratch, returning the (possibly
// grown) buffer for reuse.
func WriteMsg(w io.Writer, buf []byte, m Msg) ([]byte, error) {
	buf = AppendFrame(buf[:0], m)
	_, err := w.Write(buf)
	return buf, err
}

// ReadFrame reads one complete framed message from r into buf (grown as
// needed), returning the frame bytes [len][type][payload] for DecodeFrame or
// DecodeFrameInto.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) {
	if cap(buf) < 4 {
		buf = make([]byte, 0, 512)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return buf, err
	}
	n := binary.LittleEndian.Uint32(hdr)
	if n < 1 || n > maxFrame {
		return buf, fmt.Errorf("wire: frame length %d out of range", n)
	}
	total := 4 + int(n)
	if cap(buf) < total {
		nb := make([]byte, total)
		copy(nb, hdr)
		buf = nb
	} else {
		buf = buf[:total]
	}
	if _, err := io.ReadFull(r, buf[4:total]); err != nil {
		return buf, err
	}
	return buf[:total], nil
}
