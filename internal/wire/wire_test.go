package wire

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/wire.golden")

func id(digits ...ids.Digit) ids.ID { return ids.FromDigits(digits) }

func pfx(digits ...ids.Digit) ids.Prefix { return ids.PrefixFromDigits(digits) }

func ent(seed int) route.Entry {
	return route.Entry{
		ID:       id(ids.Digit(seed%16), ids.Digit((seed+3)%16), ids.Digit((seed+7)%16)),
		Addr:     netsim.Addr(seed * 11),
		Distance: float64(seed) * 1.5,
		Pinned:   seed%2 == 0,
		Leaving:  seed%3 == 0,
	}
}

// fixtures returns one representatively populated message per wire type, in
// Types() order. Every field is non-zero somewhere so the round-trip and
// golden tests exercise the full encoding of each struct.
func fixtures() []Msg {
	return []Msg{
		&Ping{},
		&Ack{},
		&RouteStep{Key: id(1, 2, 3, 4), Level: 2, Op: RouteOpPublish},
		&MatchQueryReq{Origin: id(5, 6, 7), Level: 1, Digit: 9},
		&MatchQueryResp{Entries: []route.Entry{ent(1), ent(2), ent(3)}},
		&TableBandReq{Floor: 3, Fold: -1},
		&TableBandResp{Entries: []route.Entry{ent(4)}},
		&ShareReq{Entries: []route.Entry{ent(5), ent(6)}},
		&ShareResp{Adopted: 7},
		&LocateStep{GUID: id(8, 9), Key: id(10, 11), Level: 4, Hops: 12, Salt: 3},
		&VerifyReq{GUID: id(12, 13, 14)},
		&VerifyResp{Serves: true},
		&DeleteBack{GUID: id(1), Key: id(2), Server: id(3), StopAt: id(4)},
		&BackAdd{Level: 5, From: ent(7)},
		&BackRemove{Level: 6, ID: id(15, 0, 1)},
		&McastStep{P: pfx(2, 3), Root: pfx(2), NewNode: ent(8), HoleLevel: 1},
		&McastNotify{Me: ent(9), Slots: []Slot{{Level: 0, Digit: 3}, {Level: 2, Digit: 15}}},
		&JoinSnapshotReq{NewID: id(7, 7, 7), NewAddr: 42, PinLevel: 2},
		&JoinSnapshotResp{Rows: []LeveledEntry{{Level: 0, E: ent(10)}, {Level: 3, E: ent(11)}}},
		&ReacquireReq{},
		&CaravanStep{Server: id(6), ServerAddr: 17, Recs: []PubRec{
			{GUID: id(1, 2), Key: id(3, 4), Level: 1, PrevID: id(5, 6), PrevAddr: 23, Hops: 2, Salt: 1},
		}},
		&LeaveNotify{Leaver: id(9, 8, 7), Level: 3, Replacements: []route.Entry{ent(12)}},
		&NodeDeleted{ID: id(4, 4, 4)},
		&DropLinks{ID: id(5, 5, 5)},
		&LocalStep{Key: id(0, 1, 2), Level: 1, Region: 6},
		&PtrForward{GUID: id(1), Key: id(2), Server: id(3), ServerAddr: 8, Level: 2,
			PrevID: id(4), PrevAddr: 9},
		&PublishReq{GUID: id(3, 1, 4), Adopt: true, Salts: []int{0, 2, 5}},
		&ClusterInstall{Base: 16, Digits: 6, R: 3, Self: ent(13),
			Rows:      []LeveledEntry{{Level: 1, E: ent(14)}},
			Endpoints: []Endpoint{{Addr: 0, HostPort: "127.0.0.1:9000"}, {Addr: 1, HostPort: "127.0.0.1:9001"}}},
		&ClusterAck{},
		&ClusterServe{GUIDs: []ids.ID{id(1, 1), id(2, 2)}},
		&ClusterPublish{GUID: id(3, 3), Key: id(4, 4), Server: id(5, 5), ServerAddr: 12, Level: 1},
		&ClusterPubDone{Root: id(6, 6)},
		&ClusterLocate{GUID: id(7, 7), Key: id(8, 8), Level: 2, Hops: 5},
		&ClusterFound{Found: true, Server: id(9, 9), ServerAddr: 31, Hops: 4},
	}
}

// TestFixturesCoverAllTypes pins that the fixture list, the Types() registry
// and the New() factory agree — a new message type must be added to all three
// (and to testdata/wire.golden) to ship.
func TestFixturesCoverAllTypes(t *testing.T) {
	fx := fixtures()
	types := Types()
	if len(fx) != len(types) {
		t.Fatalf("fixtures() has %d entries, Types() has %d", len(fx), len(types))
	}
	for i, m := range fx {
		if m.WireType() != types[i] {
			t.Errorf("fixture %d is %v, Types()[%d] is %v", i, m.WireType(), i, types[i])
		}
		fresh := New(types[i])
		if fresh == nil {
			t.Errorf("New(%v) returned nil", types[i])
			continue
		}
		if fresh.WireType() != types[i] {
			t.Errorf("New(%v).WireType() = %v", types[i], fresh.WireType())
		}
	}
}

// TestRoundTripAll encodes every fixture, decodes it twice — once via the
// allocating DecodeFrame path and once via DecodeFrameInto with a recycled,
// previously populated struct — and checks both re-encode byte-identically.
// The recycled-struct leg is what catches a DecodeFrom that appends instead
// of overwriting.
func TestRoundTripAll(t *testing.T) {
	for _, m := range fixtures() {
		frame := AppendFrame(nil, m)

		got, n, err := DecodeFrame(frame)
		if err != nil {
			t.Fatalf("%v: DecodeFrame: %v", m.WireType(), err)
		}
		if n != len(frame) {
			t.Fatalf("%v: DecodeFrame consumed %d of %d bytes", m.WireType(), n, len(frame))
		}
		if re := AppendFrame(nil, got); !bytes.Equal(re, frame) {
			t.Fatalf("%v: re-encode mismatch\n got %x\nwant %x", m.WireType(), re, frame)
		}

		// Recycled struct pre-filled with a different fixture's state: decode
		// must fully overwrite it.
		dirty := New(m.WireType())
		dirtyFrame := AppendFrame(nil, dirty)
		if _, err := DecodeFrameInto(frame, dirty); err != nil {
			t.Fatalf("%v: DecodeFrameInto: %v", m.WireType(), err)
		}
		if re := AppendFrame(nil, dirty); !bytes.Equal(re, frame) {
			t.Fatalf("%v: recycled re-encode mismatch (was %x)\n got %x\nwant %x",
				m.WireType(), dirtyFrame, re, frame)
		}
	}
}

// TestDecodeFrameIntoTypeMismatch pins the type check of the zero-allocation
// decode path.
func TestDecodeFrameIntoTypeMismatch(t *testing.T) {
	frame := AppendFrame(nil, &ShareResp{Adopted: 1})
	var wrong VerifyResp
	if _, err := DecodeFrameInto(frame, &wrong); err == nil {
		t.Fatal("DecodeFrameInto accepted a frame of the wrong type")
	}
}

// TestDecodeRejectsMalformed pins the codec's defensive behavior on hostile
// or truncated input.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := AppendFrame(nil, &VerifyReq{GUID: id(1, 2, 3)})

	cases := map[string][]byte{
		"empty":          {},
		"short header":   valid[:3],
		"truncated body": valid[:len(valid)-1],
		"unknown type":   {1, 0, 0, 0, 255},
		"zero length":    {0, 0, 0, 0},
	}
	for name, b := range cases {
		if _, _, err := DecodeFrame(b); err == nil {
			t.Errorf("%s: DecodeFrame accepted %x", name, b)
		}
	}

	// Trailing bytes after a well-formed payload must be rejected.
	trailing := append(append([]byte{}, valid...), 0xAA)
	trailing[0]++ // grow the declared length to cover the junk byte
	if _, _, err := DecodeFrame(trailing); err == nil {
		t.Error("DecodeFrame accepted a frame with trailing bytes")
	}

	// A digit outside the maximum base must be rejected.
	bad := AppendFrame(nil, &VerifyReq{GUID: id(1)})
	bad[len(bad)-1] = 200 // the single digit byte
	if _, _, err := DecodeFrame(bad); err == nil {
		t.Error("DecodeFrame accepted an out-of-range digit")
	}

	// A hostile list count larger than the remaining payload must fail
	// before allocation.
	resp := AppendFrame(nil, &MatchQueryResp{})
	resp[0] = 3 // payload: type byte + count... keep frame length consistent
	hostile := []byte{3, 0, 0, 0, byte(TMatchQueryResp), 0xFF, 0x7F}
	if _, _, err := DecodeFrame(hostile); err == nil {
		t.Error("DecodeFrame accepted a hostile entry count")
	}
	_ = resp
}

// TestWireGolden pins the framed encoding of every message type against
// testdata/wire.golden. A diff here means the wire format changed: if that is
// intentional (a NEW appended type), regenerate with
//
//	go test ./internal/wire -run TestWireGolden -update
//
// Changing the encoding of an EXISTING line breaks cross-version
// compatibility and must not happen.
func TestWireGolden(t *testing.T) {
	var sb strings.Builder
	for _, m := range fixtures() {
		fmt.Fprintf(&sb, "%3d %-16s %x\n", byte(m.WireType()), m.WireType().String(),
			AppendFrame(nil, m))
	}
	got := sb.String()

	path := filepath.Join("testdata", "wire.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (regenerate with -update): %v", path, err)
	}
	if got != string(want) {
		t.Fatalf("wire format drift vs %s.\nGot:\n%s\nWant:\n%s\n"+
			"Appending a new type: regenerate with -update. "+
			"Changing an existing line: that is a wire-compat break, revert it.",
			path, got, string(want))
	}
}

// FuzzFrameRoundTrip throws arbitrary bytes at DecodeFrame and checks the
// codec invariant on everything it accepts: decode → encode reaches a fixed
// point (the second encoding is canonical and re-decodes to itself). The
// corpus seeds one frame per message type, so mutation explores every
// struct's field layout.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, m := range fixtures() {
		f.Add(AppendFrame(nil, m))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, n, err := DecodeFrame(b)
		if err != nil {
			return // malformed input is allowed to fail, never to panic
		}
		if n < 5 || n > len(b) {
			t.Fatalf("DecodeFrame consumed %d of %d bytes", n, len(b))
		}
		canon := AppendFrame(nil, m)
		m2, n2, err := DecodeFrame(canon)
		if err != nil {
			t.Fatalf("re-decode of canonical %T failed: %v (frame %x)", m, err, canon)
		}
		if n2 != len(canon) {
			t.Fatalf("canonical re-decode consumed %d of %d bytes", n2, len(canon))
		}
		if again := AppendFrame(nil, m2); !bytes.Equal(again, canon) {
			t.Fatalf("%T not a fixed point:\n first %x\nsecond %x", m, canon, again)
		}
	})
}

// FuzzDecodeInto drives the recycled-struct decode path: every accepted frame
// must decode identically into a fresh struct and into one pre-populated with
// unrelated state.
func FuzzDecodeInto(f *testing.F) {
	for _, m := range fixtures() {
		f.Add(AppendFrame(nil, m))
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, _, err := DecodeFrame(b)
		if err != nil {
			return
		}
		canon := AppendFrame(nil, m)
		for _, recycled := range fixtures() {
			if recycled.WireType() != m.WireType() {
				continue
			}
			if _, err := DecodeFrameInto(canon, recycled); err != nil {
				t.Fatalf("DecodeFrameInto(%T): %v", recycled, err)
			}
			if re := AppendFrame(nil, recycled); !bytes.Equal(re, canon) {
				t.Fatalf("recycled %T decode diverged:\n got %x\nwant %x", recycled, re, canon)
			}
		}
	})
}
