package wire

import (
	"tapestry/internal/ids"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
)

// The cluster protocol (types 40+) is what cmd/tapestry-node daemons speak to
// each other and to the examples/cluster harness: the harness computes the
// static overlay centrally, installs each node's routing table and endpoint
// map, then drives publish/locate traffic that the daemons forward among
// themselves over TCP using ordinary prefix routing.

// Endpoint maps a simulated overlay address to a real host:port.
type Endpoint struct {
	Addr     netsim.Addr
	HostPort string
}

// ClusterInstall provisions one daemon: its identity, identifier-space shape,
// flattened routing table, and the address book for every process in the
// cluster.
type ClusterInstall struct {
	Base      int
	Digits    int
	R         int
	Self      route.Entry
	Rows      []LeveledEntry
	Endpoints []Endpoint
}

func (*ClusterInstall) WireType() Type { return TClusterInstall }
func (m *ClusterInstall) EncodeTo(e *Enc) {
	e.Int(m.Base)
	e.Int(m.Digits)
	e.Int(m.R)
	e.Entry(m.Self)
	e.Uvarint(uint64(len(m.Rows)))
	for _, r := range m.Rows {
		e.Int(r.Level)
		e.Entry(r.E)
	}
	e.Uvarint(uint64(len(m.Endpoints)))
	for _, ep := range m.Endpoints {
		e.Addr(ep.Addr)
		e.String(ep.HostPort)
	}
}
func (m *ClusterInstall) DecodeFrom(d *Dec) {
	m.Base = d.Int()
	m.Digits = d.Int()
	m.R = d.Int()
	m.Self = d.Entry()
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("row count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.Rows = m.Rows[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Rows = append(m.Rows, LeveledEntry{Level: d.Int(), E: d.Entry()})
	}
	n = d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("endpoint count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.Endpoints = m.Endpoints[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.Endpoints = append(m.Endpoints, Endpoint{Addr: d.Addr(), HostPort: d.String()})
	}
}

// ClusterAck acknowledges a cluster control message.
type ClusterAck struct{}

func (*ClusterAck) WireType() Type  { return TClusterAck }
func (*ClusterAck) EncodeTo(*Enc)   {}
func (*ClusterAck) DecodeFrom(*Dec) {}

// ClusterServe tells a daemon it is the storage server for these GUIDs.
type ClusterServe struct {
	GUIDs []ids.ID
}

func (*ClusterServe) WireType() Type { return TClusterServe }
func (m *ClusterServe) EncodeTo(e *Enc) {
	e.Uvarint(uint64(len(m.GUIDs)))
	for _, g := range m.GUIDs {
		e.ID(g)
	}
}
func (m *ClusterServe) DecodeFrom(d *Dec) {
	n := d.Uvarint()
	if d.err == nil && n > uint64(d.Len()) {
		d.fail("guid count %d exceeds remaining %d bytes", n, d.Len())
	}
	m.GUIDs = m.GUIDs[:0]
	for i := uint64(0); i < n && d.err == nil; i++ {
		m.GUIDs = append(m.GUIDs, d.ID())
	}
}

// ClusterPublish is one hop of a publish walk through the daemon overlay:
// deposit a pointer for GUID served at (Server, ServerAddr) and forward
// toward Key's root. The harness sends it with Level 0 to the server's own
// daemon, which then forwards hop by hop.
type ClusterPublish struct {
	GUID       ids.ID
	Key        ids.ID
	Server     ids.ID
	ServerAddr netsim.Addr
	Level      int
}

func (*ClusterPublish) WireType() Type { return TClusterPublish }
func (m *ClusterPublish) EncodeTo(e *Enc) {
	e.ID(m.GUID)
	e.ID(m.Key)
	e.ID(m.Server)
	e.Addr(m.ServerAddr)
	e.Int(m.Level)
}
func (m *ClusterPublish) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
	m.Key = d.ID()
	m.Server = d.ID()
	m.ServerAddr = d.Addr()
	m.Level = d.Int()
}

// ClusterPubDone acknowledges a publish walk, naming the root that
// terminated it.
type ClusterPubDone struct {
	Root ids.ID
}

func (*ClusterPubDone) WireType() Type    { return TClusterPubDone }
func (m *ClusterPubDone) EncodeTo(e *Enc) { e.ID(m.Root) }
func (m *ClusterPubDone) DecodeFrom(d *Dec) {
	m.Root = d.ID()
}

// ClusterLocate is one hop of a locate walk: find a pointer for GUID while
// routing toward Key's root.
type ClusterLocate struct {
	GUID  ids.ID
	Key   ids.ID
	Level int
	Hops  int
}

func (*ClusterLocate) WireType() Type { return TClusterLocate }
func (m *ClusterLocate) EncodeTo(e *Enc) {
	e.ID(m.GUID)
	e.ID(m.Key)
	e.Int(m.Level)
	e.Int(m.Hops)
}
func (m *ClusterLocate) DecodeFrom(d *Dec) {
	m.GUID = d.ID()
	m.Key = d.ID()
	m.Level = d.Int()
	m.Hops = d.Int()
}

// ClusterFound answers a locate walk.
type ClusterFound struct {
	Found      bool
	Server     ids.ID
	ServerAddr netsim.Addr
	Hops       int
}

func (*ClusterFound) WireType() Type { return TClusterFound }
func (m *ClusterFound) EncodeTo(e *Enc) {
	e.Bool(m.Found)
	e.ID(m.Server)
	e.Addr(m.ServerAddr)
	e.Int(m.Hops)
}
func (m *ClusterFound) DecodeFrom(d *Dec) {
	m.Found = d.Bool()
	m.Server = d.ID()
	m.ServerAddr = d.Addr()
	m.Hops = d.Int()
}
