package tapestry

import (
	"strings"
	"testing"
)

func newNet(t testing.TB, nodes int) (*Network, []*Node) {
	t.Helper()
	nw, err := New(RingSpace(nodes*4), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	ns, err := nw.Grow(nodes)
	if err != nil {
		t.Fatal(err)
	}
	return nw, ns
}

func TestFacadeLifecycle(t *testing.T) {
	nw, nodes := newNet(t, 24)
	if nw.Size() != 24 || len(nw.Nodes()) != 24 {
		t.Fatalf("size %d", nw.Size())
	}
	if _, err := nodes[0].Publish("hello"); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		res, cost := n.Locate("hello")
		if !res.Found {
			t.Fatalf("locate failed from %s", n.ID())
		}
		if res.ServerID != nodes[0].ID() {
			t.Fatalf("wrong server %s", res.ServerID)
		}
		if n != nodes[0] && cost.Messages == 0 {
			t.Error("no cost charged")
		}
	}
	if v := nw.CheckConsistency(); len(v) != 0 {
		t.Fatalf("consistency: %v", v)
	}
	if s := nw.Stats(); s.Nodes != 24 || s.TotalPointers == 0 || s.String() == "" {
		t.Errorf("stats: %+v", s)
	}
}

func TestFacadeUnpublish(t *testing.T) {
	_, nodes := newNet(t, 16)
	nodes[3].Publish("temp")
	nodes[3].Unpublish("temp")
	if res, _ := nodes[8].Locate("temp"); res.Found {
		t.Error("found after unpublish")
	}
}

func TestFacadeLeaveAndFail(t *testing.T) {
	nw, nodes := newNet(t, 24)
	nodes[0].Publish("durable")
	if _, err := nodes[5].Leave(); err != nil {
		t.Fatal(err)
	}
	if nw.Size() != 23 {
		t.Errorf("size after leave: %d", nw.Size())
	}
	nw.Fail(nodes[7])
	nw.SweepFailures()
	nw.RunMaintenance()
	for _, n := range nw.Nodes() {
		if res, _ := n.Locate("durable"); !res.Found {
			t.Fatalf("object lost after churn (client %s)", n.ID())
		}
	}
	if v := nw.CheckConsistency(); len(v) != 0 {
		t.Fatalf("consistency after churn: %v", v)
	}
}

func TestFacadeConfigVariants(t *testing.T) {
	cfg := Defaults()
	cfg.PRRRouting = true
	cfg.RootSetSize = 2
	cfg.Base = 4
	cfg.Digits = 12
	nw, err := New(RingSpace(128), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := nw.Grow(16)
	if err != nil {
		t.Fatal(err)
	}
	ns[0].Publish("x")
	if res, _ := ns[10].Locate("x"); !res.Found {
		t.Error("PRR-variant locate failed")
	}
	// Invalid config.
	bad := Defaults()
	bad.R = 1
	if _, err := New(RingSpace(8), bad); err == nil {
		t.Error("R=1 accepted")
	}
}

func TestFacadeSpaceConstructors(t *testing.T) {
	if RingSpace(8).Size() != 8 {
		t.Error("ring")
	}
	if TorusSpace(4).Size() != 16 {
		t.Error("torus")
	}
	if CloudSpace(10, 1).Size() != 10 {
		t.Error("cloud")
	}
	if RandomGraphSpace(12, 2, 1).Size() != 12 {
		t.Error("graph")
	}
	if TransitStubSpace(1).Size() == 0 {
		t.Error("transit-stub")
	}
}

func TestFacadeSpaceFull(t *testing.T) {
	nw, err := New(RingSpace(4), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Grow(5); err == nil {
		t.Error("overfull space accepted")
	}
}

func TestFacadeStubLocality(t *testing.T) {
	nw, err := New(TransitStubSpace(3), Defaults())
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := nw.Grow(48)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].PublishLocal("regional"); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range nodes[1:] {
		res, _, _ := n.LocateLocal("regional")
		if res.Found {
			found = true
		}
	}
	if !found {
		t.Error("nobody found the regional object")
	}
}

func TestFacadeLinkFaults(t *testing.T) {
	cfg := Defaults()
	cfg.LinkLossRate = 0.5
	// The oracle static build constructs the mesh without messages: the
	// injected loss then hits only the measured lookups, not the joins.
	cfg.StaticBuild = true
	nw, err := New(RingSpace(128), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := nw.Grow(24)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].Publish("stormy")
	for _, n := range nodes {
		n.Locate("stormy")
	}
	s := nw.Stats()
	if s.LinkLost == 0 {
		t.Fatalf("no messages lost at 50%% loss: %+v", s)
	}
	if s.String() == "" || !strings.Contains(s.String(), "lost=") {
		t.Errorf("stats string omits fault tallies: %q", s.String())
	}

	// Clearing faults stops the injection: the tallies freeze. (Lookups are
	// not asserted flawless — a loss mid-route makes the sender treat the
	// silent peer as dead and evict it, and that routing-state scar
	// legitimately outlives the faulty era; see the chaos README section.)
	nw.ClearFaults()
	before := nw.Stats().LinkLost
	for _, n := range nodes {
		n.Locate("stormy")
	}
	if got := nw.Stats().LinkLost; got != before {
		t.Errorf("faults still injected after ClearFaults: %d -> %d", before, got)
	}

	// Mid-run reconfiguration validates its rates.
	if err := nw.SetLinkFaults(0.1, 0.05); err != nil {
		t.Fatal(err)
	}
	if err := nw.SetLinkFaults(0.7, 0.7); err == nil {
		t.Error("rates summing past 1 accepted")
	}
	if err := nw.SetLinkFaults(-0.1, 0); err == nil {
		t.Error("negative rate accepted")
	}
	cfg.LinkLossRate, cfg.LinkDupRate = 2, 0
	if _, err := New(RingSpace(64), cfg); err == nil {
		t.Error("invalid Config.LinkLossRate accepted")
	}
}
