// Cluster: the multi-process overlay, end to end. The harness computes a
// Tapestry overlay centrally (an in-memory core mesh over a ring metric),
// boots one cmd/tapestry-node daemon process per overlay node, installs each
// daemon's routing table and endpoint book over TCP with the wire cluster
// protocol, and then drives publish and locate traffic that the daemons
// forward among themselves — every hop of every walk a real socket exchange
// between real processes.
//
// Each daemon-routed walk is cross-checked against the central mesh: the
// root a publish terminates at must equal the surrogate the in-memory
// overlay computes for the same key, and every located replica must be the
// server the object was actually placed on. Run from the repository root
// (the harness builds cmd/tapestry-node with the go tool).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"tapestry/internal/core"
	"tapestry/internal/ids"
	"tapestry/internal/metric"
	"tapestry/internal/netsim"
	"tapestry/internal/route"
	"tapestry/internal/wire"
)

// daemon is the harness's view of one spawned tapestry-node process: its
// overlay identity and one persistent control connection.
type daemon struct {
	proc *exec.Cmd
	hp   string // daemon's host:port
	conn net.Conn
	rbuf []byte
	wbuf []byte
}

// exchange performs one request/response round trip on the control conn.
func (d *daemon) exchange(req wire.Msg, want wire.Type) (wire.Msg, error) {
	var err error
	if d.wbuf, err = wire.WriteMsg(d.conn, d.wbuf, req); err != nil {
		return nil, err
	}
	frame, err := wire.ReadFrame(d.conn, d.rbuf)
	d.rbuf = frame
	if err != nil {
		return nil, err
	}
	resp, _, err := wire.DecodeFrame(frame)
	if err != nil {
		return nil, err
	}
	if resp.WireType() != want {
		return nil, fmt.Errorf("reply type %v, want %v", resp.WireType(), want)
	}
	return resp, nil
}

func main() {
	n := flag.Int("n", 100, "daemon processes to boot")
	objects := flag.Int("objects", 50, "objects to publish (round-robin servers)")
	queries := flag.Int("queries", 200, "random (client, object) locate queries")
	seed := flag.Int64("seed", 1, "RNG seed for the overlay build and workload")
	basePort := flag.Int("base-port", 0,
		"bind daemon i to 127.0.0.1:<base-port+i> instead of an ephemeral port "+
			"(0 = ephemeral; also settable via $TAPESTRY_CLUSTER_BASE_PORT)")
	flag.Parse()
	if *basePort == 0 {
		if env := os.Getenv("TAPESTRY_CLUSTER_BASE_PORT"); env != "" {
			p, err := strconv.Atoi(env)
			if err != nil {
				log.Fatalf("TAPESTRY_CLUSTER_BASE_PORT=%q: %v", env, err)
			}
			*basePort = p
		}
	}
	if err := run(*n, *objects, *queries, *seed, *basePort); err != nil {
		log.Fatal(err)
	}
}

func run(n, objects, queries int, seed int64, basePort int) error {
	// 1. Build the daemon binary once; spawning 100+ `go run` children would
	// pay the toolchain startup per process.
	tmp, err := os.MkdirTemp("", "tapestry-cluster")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "tapestry-node")
	if out, err := exec.Command("go", "build", "-o", bin, "tapestry/cmd/tapestry-node").CombinedOutput(); err != nil {
		return fmt.Errorf("building tapestry-node: %v\n%s", err, out)
	}

	// 2. Compute the overlay centrally: a core mesh over a ring metric. The
	// daemons get static snapshots of these tables; the in-memory mesh stays
	// around as the oracle the daemon walks are checked against.
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	rng := rand.New(rand.NewSource(seed))
	space := metric.NewRing(n * 4)
	mesh, err := core.NewMesh(netsim.New(space), cfg)
	if err != nil {
		return err
	}
	perm := rng.Perm(space.Size())
	addrs := make([]netsim.Addr, n)
	for i := range addrs {
		addrs[i] = netsim.Addr(perm[i])
	}
	nodes, _, err := mesh.GrowSequential(addrs, rng)
	if err != nil {
		return err
	}

	// 3. Boot one daemon per overlay node and scrape its bound address.
	start := time.Now()
	daemons := make([]*daemon, n)
	defer func() {
		for _, d := range daemons {
			if d == nil {
				continue
			}
			if d.conn != nil {
				d.conn.Close()
			}
			if d.proc != nil {
				d.proc.Process.Kill()
				d.proc.Wait()
			}
		}
	}()
	for i := range daemons {
		var args []string
		if basePort > 0 {
			// Fixed ports, one per daemon. The daemon retries a few ports
			// forward if its slot is taken, and the banner below reports the
			// port that actually won, so a stray occupant costs nothing.
			args = append(args, "-listen", fmt.Sprintf("127.0.0.1:%d", basePort+i))
		}
		proc := exec.Command(bin, args...)
		proc.Stderr = os.Stderr
		stdout, err := proc.StdoutPipe()
		if err != nil {
			return err
		}
		if err := proc.Start(); err != nil {
			return fmt.Errorf("daemon %d: %v", i, err)
		}
		daemons[i] = &daemon{proc: proc}
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			return fmt.Errorf("daemon %d exited before announcing its address", i)
		}
		hp, ok := strings.CutPrefix(sc.Text(), "LISTEN ")
		if !ok {
			return fmt.Errorf("daemon %d: unexpected banner %q", i, sc.Text())
		}
		daemons[i].hp = hp
		// The pipe stays open but unread from here on; the daemon prints
		// nothing else, so no writer ever blocks on it.
	}
	fmt.Printf("booted %d daemon processes in %v\n", n, time.Since(start).Round(time.Millisecond))

	// 4. Install each daemon: identity, flattened routing table, and the
	// address book mapping every overlay address to its daemon's socket.
	eps := make([]wire.Endpoint, n)
	for i, d := range daemons {
		eps[i] = wire.Endpoint{Addr: nodes[i].Addr(), HostPort: d.hp}
	}
	for i, d := range daemons {
		if d.conn, err = net.DialTimeout("tcp", d.hp, 5*time.Second); err != nil {
			return fmt.Errorf("dialing daemon %d: %v", i, err)
		}
		inst := &wire.ClusterInstall{
			Base:      mesh.Spec().Base,
			Digits:    mesh.Spec().Digits,
			R:         cfg.R,
			Self:      route.Entry{ID: nodes[i].ID(), Addr: nodes[i].Addr()},
			Endpoints: eps,
		}
		nodes[i].Table().ForEachNeighbor(func(l int, e route.Entry) {
			inst.Rows = append(inst.Rows, wire.LeveledEntry{Level: l, E: e})
		})
		if _, err := d.exchange(inst, wire.TClusterAck); err != nil {
			return fmt.Errorf("installing daemon %d: %v", i, err)
		}
	}
	fmt.Printf("installed %d routing tables (%d-ary digits, %d levels)\n",
		n, mesh.Spec().Base, mesh.Spec().Digits)

	// 5. Publish: each object is stored at a round-robin server; the server's
	// daemon deposits pointers hop by hop toward the key's root. The root a
	// walk terminates at must match the central mesh's surrogate.
	guids := make([]ids.ID, objects)
	servers := make([]int, objects)
	published := 0
	for j := range guids {
		guids[j] = mesh.Spec().Hash(fmt.Sprintf("object-%04d", j))
		servers[j] = j % n
		s := servers[j]
		if _, err := daemons[s].exchange(&wire.ClusterServe{GUIDs: guids[j : j+1]}, wire.TClusterAck); err != nil {
			return fmt.Errorf("serve %d: %v", j, err)
		}
		resp, err := daemons[s].exchange(&wire.ClusterPublish{
			GUID: guids[j], Key: guids[j],
			Server: nodes[s].ID(), ServerAddr: nodes[s].Addr(),
		}, wire.TClusterPubDone)
		if err != nil {
			return fmt.Errorf("publish %d: %v", j, err)
		}
		root := resp.(*wire.ClusterPubDone).Root
		oracle, _, err := nodes[s].SurrogateFor(guids[j], nil)
		if err != nil {
			return fmt.Errorf("oracle surrogate %d: %v", j, err)
		}
		if root.IsZero() || !root.Equal(oracle.ID()) {
			fmt.Printf("publish %d: daemon root %v, oracle root %v\n", j, root, oracle.ID())
			continue
		}
		published++
	}
	fmt.Printf("published %d/%d objects (daemon roots match the central mesh)\n", published, objects)

	// 6. Locate from random clients; every hit must name the true server.
	found, hops := 0, 0
	for q := 0; q < queries; q++ {
		j := rng.Intn(objects)
		c := rng.Intn(n)
		resp, err := daemons[c].exchange(&wire.ClusterLocate{GUID: guids[j], Key: guids[j]},
			wire.TClusterFound)
		if err != nil {
			return fmt.Errorf("locate %d: %v", q, err)
		}
		f := resp.(*wire.ClusterFound)
		if f.Found && f.ServerAddr == nodes[servers[j]].Addr() {
			found++
			hops += f.Hops
		}
	}
	fmt.Printf("queries: %d/%d found | mean hops %.2f\n", found, queries,
		float64(hops)/float64(max(found, 1)))

	if published != objects || found != queries {
		return fmt.Errorf("cluster run incomplete: %d/%d published, %d/%d found",
			published, objects, found, queries)
	}
	fmt.Println("OK: every publish and every locate succeeded over real sockets")
	return nil
}
