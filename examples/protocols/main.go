// Protocols: one API, five location systems. The same workload — grow an
// overlay, publish an object from every eighth node, locate it from
// everywhere — runs against Tapestry and each of the paper's baselines
// through tapestry.NewProtocol, and the comparison Table 1 makes
// qualitatively falls out numerically: hop counts, mean query distance, and
// which operations each protocol honestly declines.
package main

import (
	"errors"
	"fmt"
	"log"

	"tapestry"
)

func main() {
	const n = 48
	protocols := []tapestry.Protocol{
		tapestry.Tapestry, tapestry.Chord, tapestry.Pastry,
		tapestry.CAN, tapestry.Directory,
	}
	fmt.Printf("%-10s  %-50s  %8s  %10s  %s\n",
		"protocol", "caps", "mean hops", "mean dist", "leave?")
	for _, p := range protocols {
		cfg := tapestry.Defaults()
		cfg.Seed = 7
		net, err := tapestry.NewProtocol(tapestry.RingSpace(4*n), p, cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes, err := net.Grow(n)
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i += 8 {
			if _, err := nodes[i].Publish("shared/object"); err != nil {
				log.Fatal(err)
			}
		}
		hops, dist, queries := 0, 0.0, 0
		for _, client := range nodes {
			res, cost := client.Locate("shared/object")
			if !res.Found {
				log.Fatalf("%s: locate failed from %s", p, client.ID())
			}
			hops += res.Hops
			dist += cost.Distance
			queries++
		}
		// Every protocol answers Locate; only some can churn. A declined
		// Leave is an error matching ErrUnsupported, never a panic.
		leave := "yes"
		if _, err := nodes[1].Leave(); errors.Is(err, tapestry.ErrUnsupported) {
			leave = "declined"
		} else if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s  %-50s  %8.2f  %10.1f  %s\n",
			p, net.Caps(), float64(hops)/float64(queries), dist/float64(queries), leave)
	}
}
