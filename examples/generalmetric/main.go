// General metrics: the Section 7 scheme ("PRR v.0") on a metric space that
// is NOT growth-restricted — the shortest-path metric of a random graph.
// Tapestry's O(1)-stretch guarantee needs the expansion property; this
// static sampling directory trades dynamics and load balance for
// polylogarithmic stretch on arbitrary metrics (Theorem 7).
//
// This example uses the research package directly (it is a static data
// structure, not an overlay protocol).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"tapestry/internal/genmetric"
	"tapestry/internal/metric"
)

func main() {
	const n = 256
	rng := rand.New(rand.NewSource(3))
	space := metric.NewRandomGraph(n, 3, 10, rng)
	fmt.Printf("metric: %s (not growth-restricted)\n", space.Name())
	exp := metric.EstimateExpansion(space, 24, 6)
	fmt.Printf("measured expansion: median %.1f p90 %.1f max %.1f (b=16 needs c^2 < 16)\n",
		exp.Median, exp.P90, exp.Max)

	dir := genmetric.Build(space, genmetric.DefaultConfig())
	fmt.Printf("directory: %d levels x %d samples\n", dir.Levels(), dir.Width())

	// Publish 16 objects on random nodes; query from everywhere.
	type obj struct {
		name   string
		server int
	}
	objs := make([]obj, 16)
	for i := range objs {
		objs[i] = obj{fmt.Sprintf("dataset-%02d", i), rng.Intn(n)}
		dir.Publish(objs[i].name, objs[i].server)
	}

	var worst, sum float64
	count := 0
	levelHist := map[int]int{}
	for _, o := range objs {
		for q := 0; q < 32; q++ {
			x := rng.Intn(n)
			if x == o.server {
				continue
			}
			res := dir.Lookup(o.name, x)
			if !res.Found {
				log.Fatalf("lookup failed for %s from %d", o.name, x)
			}
			stretch := res.Dist / space.Distance(x, o.server)
			sum += stretch
			count++
			if stretch > worst {
				worst = stretch
			}
			levelHist[res.Level]++
		}
	}
	logn := math.Log2(n)
	fmt.Printf("stretch over %d lookups: mean %.1f, worst %.1f (log^3 n = %.0f)\n",
		count, sum/float64(count), worst, logn*logn*logn)
	fmt.Println("answer level histogram (high level = nearby discovery):")
	for l := dir.Levels(); l >= 0; l-- {
		if c := levelHist[l]; c > 0 {
			fmt.Printf("  level %2d: %4d lookups\n", l, c)
		}
	}

	var space2 float64
	for _, s := range dir.SpacePerNode() {
		space2 += float64(s)
	}
	fmt.Printf("average directory space per node: %.0f entries (log^2 n = %.0f)\n",
		space2/n, logn*logn)
}
