// Churn: the paper's headline feature exercised end to end — nodes join and
// leave (gracefully and by crashing) while clients keep querying. Objects
// stay available through voluntary churn; crash losses heal at the next
// soft-state maintenance epoch.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tapestry"
)

func main() {
	net, err := tapestry.New(tapestry.RingSpace(2048), tapestry.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	nodes, err := net.Grow(128)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))

	// Six objects on six long-lived servers.
	servers := nodes[:6]
	names := make([]string, len(servers))
	for i, s := range servers {
		names[i] = fmt.Sprintf("service-%c", 'a'+i)
		if _, err := s.Publish(names[i]); err != nil {
			log.Fatal(err)
		}
	}
	isServer := map[string]bool{}
	for _, s := range servers {
		isServer[s.ID()] = true
	}

	probe := func(tag string) {
		ok, total := 0, 0
		all := net.Nodes()
		for _, name := range names {
			for t := 0; t < 8; t++ {
				c := all[rng.Intn(len(all))]
				if res, _ := c.Locate(name); res.Found {
					ok++
				}
				total++
			}
		}
		fmt.Printf("%-34s availability %d/%d, %s\n", tag, ok, total, net.Stats())
	}
	probe("baseline:")

	// 32 graceful departures interleaved with 32 joins.
	leaves := 0
	for i := 0; i < 64; i++ {
		if i%2 == 0 {
			if _, err := net.Grow(1); err != nil {
				log.Fatal(err)
			}
			continue
		}
		all := net.Nodes()
		victim := all[rng.Intn(len(all))]
		if isServer[victim.ID()] {
			continue
		}
		if _, err := victim.Leave(); err == nil {
			leaves++
		}
	}
	probe(fmt.Sprintf("after 32 joins + %d leaves:", leaves))

	// Now a correlated crash: 12 random nodes fail without notice.
	crashed := 0
	for _, victim := range net.Nodes() {
		if crashed == 12 {
			break
		}
		if isServer[victim.ID()] {
			continue
		}
		net.Fail(victim)
		crashed++
	}
	removed := net.SweepFailures()
	probe(fmt.Sprintf("after %d crashes (swept %d links):", crashed, removed))

	// Soft state heals whatever the crashes orphaned.
	net.RunMaintenance()
	probe("after maintenance epoch:")

	if v := net.CheckConsistency(); len(v) != 0 {
		log.Fatalf("consistency violations: %v", v)
	}
	fmt.Println("final consistency audit: clean")
}
