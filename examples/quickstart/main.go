// Quickstart: stand up a 64-node Tapestry overlay, publish an object, and
// locate it from every node — the "Deterministic Location" property in
// thirty lines.
package main

import (
	"fmt"
	"log"

	"tapestry"
)

func main() {
	// Nodes live on a 256-point ring metric; every message is charged its
	// ring distance, so cost numbers below are real (simulated) latencies.
	net, err := tapestry.New(tapestry.RingSpace(256), tapestry.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	nodes, err := net.Grow(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay up: %s\n", net.Stats())

	server := nodes[7]
	if _, err := server.Publish("alice/photo.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("node %s (at point %d) published alice/photo.png\n", server.ID(), server.Addr())

	worstHops := 0
	for _, client := range nodes {
		res, cost := client.Locate("alice/photo.png")
		if !res.Found {
			log.Fatalf("node %s failed to locate the object", client.ID())
		}
		if res.Hops > worstHops {
			worstHops = res.Hops
		}
		if client == nodes[13] {
			fmt.Printf("sample query from %s: server=%s hops=%d distance=%.0f\n",
				client.ID(), res.ServerID, res.Hops, cost.Distance)
		}
	}
	fmt.Printf("located from all %d nodes; worst case %d hops (IDs have %d digits)\n",
		len(nodes), worstHops, 8)

	if v := net.CheckConsistency(); len(v) != 0 {
		log.Fatalf("consistency violations: %v", v)
	}
	fmt.Println("routing-mesh consistency audit: clean")
}
