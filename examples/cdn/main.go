// CDN: the locality story. Replicas of a popular object are placed in a few
// stub networks of a transit-stub topology (the Internet model of §6.2).
// Tapestry's in-network object pointers route each client to a NEARBY
// replica; with the §6.3 local-branch optimization, clients that share a
// stub with a replica never pay wide-area latency at all. The final act
// turns on the hot-object serving layer (the per-node locate cache): repeat
// fetches of a popular single-replica object are answered at the first hop
// instead of re-walking to the root on every request.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"tapestry"
)

func main() {
	cfg := tapestry.Defaults()
	cfg.LocateCacheCap = 256 // the hot-object serving layer (off by default)
	net, err := tapestry.New(tapestry.TransitStubSpace(7), cfg)
	if err != nil {
		log.Fatal(err)
	}
	// The default transit-stub space has 16 transit routers and 48 stubs of
	// 8 hosts; put a node on 160 of the stub points.
	nodes, err := net.Grow(160)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))

	// Three replicas of one object, on far-apart nodes, published with the
	// stub-local branch.
	replicaIdx := []int{0, 60, 120}
	for _, i := range replicaIdx {
		if _, err := nodes[i].PublishLocal("launch-video.mp4"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replica on node %s (point %d)\n", nodes[i].ID(), nodes[i].Addr())
	}

	replicaStubs := map[int]bool{}
	for _, i := range replicaIdx {
		replicaStubs[net.RegionOf(nodes[i].Addr())] = true
	}

	var lat, hops float64
	var stayedLocal, count, sameStub, sameStubLocal int
	for q := 0; q < 400; q++ {
		client := nodes[rng.Intn(len(nodes))]
		res, cost, local := client.LocateLocal("launch-video.mp4")
		if !res.Found {
			log.Fatalf("client %s could not find the video", client.ID())
		}
		lat += cost.Distance
		hops += float64(res.Hops)
		if local {
			stayedLocal++
		}
		if replicaStubs[net.RegionOf(client.Addr())] {
			sameStub++
			if local {
				sameStubLocal++
			}
		}
		count++
	}
	fmt.Printf("400 fetches: mean latency %.1f, mean hops %.1f, %d served without leaving the client's stub\n",
		lat/float64(count), hops/float64(count), stayedLocal)
	fmt.Printf("clients sharing a stub with a replica: %d, of which %d (%.0f%%) never left their stub\n",
		sameStub, sameStubLocal, 100*float64(sameStubLocal)/float64(max(sameStub, 1)))

	// Contrast: a single-replica object without local publication. The first
	// pass starts with cold caches (this object was never queried); the
	// second repeats the same load once the locate paths have cached it.
	if _, err := nodes[0].Publish("cold-object.bin"); err != nil {
		log.Fatal(err)
	}
	var coldLat, warmLat float64
	var cachedHits int
	for q := 0; q < 400; q++ {
		client := nodes[rng.Intn(len(nodes))]
		res, cost := client.Locate("cold-object.bin")
		if !res.Found {
			log.Fatal("cold object lost")
		}
		coldLat += cost.Distance
	}
	for q := 0; q < 400; q++ {
		client := nodes[rng.Intn(len(nodes))]
		res, cost := client.Locate("cold-object.bin")
		if !res.Found {
			log.Fatal("cold object lost")
		}
		warmLat += cost.Distance
		if res.FromCache {
			cachedHits++
		}
	}
	fmt.Printf("single-replica baseline: mean latency %.1f (%.1fx the replicated CDN)\n",
		coldLat/400, (coldLat/400)/(lat/float64(count)))
	fmt.Printf("same load, caches warm: mean latency %.1f, %d/400 fetches answered from the locate cache\n",
		warmLat/400, cachedHits)
	fmt.Printf("overlay: %s\n", net.Stats())
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
