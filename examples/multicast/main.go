// Multicast: acknowledged multicast (§4.1) as an application service. The
// routing mesh doubles as a spanning tree over every prefix subtree: one
// call reaches exactly the nodes whose IDs share a prefix, with positive
// acknowledgment when the entire subtree has been covered — the primitive
// the insertion protocol itself is built on.
package main

import (
	"fmt"
	"log"
	"strings"

	"tapestry"
)

func main() {
	net, err := tapestry.New(tapestry.RingSpace(1024), tapestry.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	nodes, err := net.Grow(200)
	if err != nil {
		log.Fatal(err)
	}
	origin := nodes[0]
	fmt.Printf("origin node %s\n", origin.ID())

	for prefixLen := 0; prefixLen <= 2; prefixLen++ {
		var reached []string
		count, cost, err := origin.Multicast(prefixLen, func(id string) {
			reached = append(reached, id)
		})
		if err != nil {
			log.Fatal(err)
		}
		// Verify coverage against the global membership.
		prefix := origin.ID()[:prefixLen]
		want := 0
		for _, n := range net.Nodes() {
			if strings.HasPrefix(n.ID(), prefix) {
				want++
			}
		}
		fmt.Printf("prefix %-3q reached %3d nodes (expected %3d) with %4d messages, %.1f msgs/node\n",
			prefix, count, want, cost.Messages, float64(cost.Messages)/float64(max(count, 1)))
		if count != want {
			log.Fatalf("coverage violated: reached %d of %d", count, want)
		}
		if len(reached) != count {
			log.Fatalf("callback applied %d times for %d nodes", len(reached), count)
		}
	}
	fmt.Println("Theorem 5 verified: every prefix subtree fully covered, with acknowledgments.")
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
