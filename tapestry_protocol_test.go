package tapestry

import (
	"errors"
	"sync"
	"testing"
)

// growProtocol builds an n-node overlay of the given protocol. The first
// Grow call bulk-builds, which is the only way to populate protocols
// without dynamic insertion (Pastry).
func growProtocol(t testing.TB, p Protocol, n int) (*Network, []*Node) {
	t.Helper()
	nw, err := NewProtocol(RingSpace(n*4), p, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := nw.Grow(n)
	if err != nil {
		t.Fatal(err)
	}
	return nw, nodes
}

// TestProtocolLifecycle drives every backing protocol through the shared
// facade surface: grow, publish, locate from every member, stats.
func TestProtocolLifecycle(t *testing.T) {
	for _, p := range []Protocol{Tapestry, Chord, Pastry, CAN, Directory} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			nw, nodes := growProtocol(t, p, 20)
			if nw.Protocol() != p {
				t.Fatalf("Protocol() = %v", nw.Protocol())
			}
			if nw.Size() != 20 || len(nw.Nodes()) != 20 {
				t.Fatalf("size %d", nw.Size())
			}
			if _, err := nodes[0].Publish("hello"); err != nil {
				t.Fatal(err)
			}
			for _, n := range nodes {
				res, cost := n.Locate("hello")
				if !res.Found {
					t.Fatalf("locate failed from %s", n.ID())
				}
				if res.ServerAddr != nodes[0].Addr() {
					t.Fatalf("wrong server addr %d, want %d", res.ServerAddr, nodes[0].Addr())
				}
				if n != nodes[0] && cost.Messages == 0 {
					t.Errorf("no cost charged from %s", n.ID())
				}
			}
			if s := nw.Stats(); s.Nodes != 20 || s.TotalMessages == 0 {
				t.Errorf("stats: %+v", s)
			}
			if nw.Caps() == "" {
				t.Error("empty caps rendering")
			}
		})
	}
}

// TestProtocolUnsupportedSurfacesCleanly is the capability-refusal
// contract: operations a protocol declines return an error matching
// ErrUnsupported through the facade — no panic, no fake success.
func TestProtocolUnsupportedSurfacesCleanly(t *testing.T) {
	// CAN: no graceful leave (the one-zone-per-node model cannot merge).
	nwCAN, canNodes := growProtocol(t, CAN, 12)
	if _, err := canNodes[3].Leave(); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("CAN Leave returned %v, want ErrUnsupported", err)
	}
	if nwCAN.Size() != 12 {
		t.Fatalf("declined Leave changed membership: %d", nwCAN.Size())
	}
	// Declined Fail is a documented no-op: the node must stay alive.
	nwCAN.Fail(canNodes[3])
	if nwCAN.Size() != 12 {
		t.Fatalf("declined Fail changed membership: %d", nwCAN.Size())
	}

	// Pastry: static snapshot — no dynamic insertion.
	nwPastry, pastryNodes := growProtocol(t, Pastry, 12)
	if _, err := nwPastry.Grow(1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Pastry incremental Grow returned %v, want ErrUnsupported", err)
	}
	if _, _, err := nwPastry.AddNode(1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Pastry AddNode returned %v, want ErrUnsupported", err)
	}
	if _, err := pastryNodes[0].Leave(); !errors.Is(err, ErrUnsupported) {
		t.Fatal("Pastry Leave accepted")
	}

	// Tapestry-only extended surface declines elsewhere.
	_, chordNodes := growProtocol(t, Chord, 12)
	if _, _, err := chordNodes[0].Multicast(0, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatal("Chord Multicast accepted")
	}
	if _, err := chordNodes[0].PublishLocal("x"); !errors.Is(err, ErrUnsupported) {
		t.Fatal("Chord PublishLocal accepted")
	}
}

// TestProtocolChurn exercises the churn-capable baselines through the
// facade: graceful leave keeps objects available, maintenance repairs
// around failures.
func TestProtocolChurn(t *testing.T) {
	for _, p := range []Protocol{Tapestry, Chord, Directory} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			nw, nodes := growProtocol(t, p, 24)
			if _, err := nodes[0].Publish("durable"); err != nil {
				t.Fatal(err)
			}
			if _, err := nodes[5].Leave(); err != nil {
				t.Fatal(err)
			}
			if nw.Size() != 23 {
				t.Fatalf("size after leave: %d", nw.Size())
			}
			nw.Fail(nodes[7])
			nw.SweepFailures()
			nw.RunMaintenance()
			if nw.Size() != 22 {
				t.Fatalf("size after fail: %d", nw.Size())
			}
			if p == Chord {
				// Chord has no soft-state republish: a reference stored at a
				// crashed owner is gone until the publisher re-announces —
				// which deployed publishers do periodically, so do it here.
				if _, err := nodes[0].Publish("durable"); err != nil {
					t.Fatal(err)
				}
			}
			for _, n := range nw.Nodes() {
				if res, _ := n.Locate("durable"); !res.Found {
					t.Fatalf("object lost after churn (client %s)", n.ID())
				}
			}
			// A fresh member keeps working after churn.
			grown, err := nw.Grow(1)
			if err != nil || len(grown) != 1 {
				t.Fatalf("post-churn grow: %v", err)
			}
			if res, _ := grown[0].Locate("durable"); !res.Found {
				t.Fatal("object invisible to the newcomer")
			}
		})
	}
}

// TestProtocolUnpublish: protocols with withdrawal really withdraw;
// protocols without it leave the object in place (documented no-op for the
// error-less Unpublish signature).
func TestProtocolUnpublish(t *testing.T) {
	for _, p := range []Protocol{Tapestry, Directory} {
		_, nodes := growProtocol(t, p, 16)
		nodes[3].Publish("temp")
		nodes[3].Unpublish("temp")
		if res, _ := nodes[8].Locate("temp"); res.Found {
			t.Errorf("%v: found after unpublish", p)
		}
	}
	_, nodes := growProtocol(t, Chord, 16)
	nodes[3].Publish("temp")
	nodes[3].Unpublish("temp") // declined: soft state persists
	if res, _ := nodes[8].Locate("temp"); !res.Found {
		t.Error("chord: declined Unpublish still removed the object")
	}
}

// TestProtocolConcurrentMembership pins the adapters' membership locking:
// concurrent AddNode/Leave/Nodes/Stats through the facade must be race-free
// (run under -race) for every churn-capable protocol.
func TestProtocolConcurrentMembership(t *testing.T) {
	for _, p := range []Protocol{Tapestry, Chord, CAN, Directory} {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			nw, nodes := growProtocol(t, p, 16)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 8; i++ {
						addr, err := nw.freeAddr()
						if err != nil {
							t.Error(err)
							return
						}
						if _, _, err := nw.AddNode(addr); err != nil {
							t.Error(err)
							return
						}
						_ = nw.Nodes()
						_ = nw.Stats()
						_ = nw.Size()
					}
					// Leave is caps-gated; a refusal is fine, a race is not.
					if _, err := nodes[4+w].Leave(); err != nil && !errors.Is(err, ErrUnsupported) {
						t.Error(err)
					}
				}()
			}
			wg.Wait()
		})
	}
}

// TestLocateLocalFromCache pins the satellite fix: a cache-served query
// through LocateLocal must report FromCache just like Locate does.
func TestLocateLocalFromCache(t *testing.T) {
	cfg := Defaults()
	cfg.LocateCacheCap = 64
	nw, err := New(RingSpace(96), cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := nw.Grow(24)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].Publish("hot"); err != nil {
		t.Fatal(err)
	}
	// Warm caches along the path, then query until a cache hit is visible
	// through BOTH entry points.
	sawLocate, sawLocal := false, false
	for i := 0; i < 64 && !(sawLocate && sawLocal); i++ {
		c := nodes[1+(i%(len(nodes)-1))]
		if res, _ := c.Locate("hot"); res.FromCache {
			sawLocate = true
		}
		if res, _, _ := c.LocateLocal("hot"); res.FromCache {
			sawLocal = true
		}
	}
	if !sawLocate {
		t.Fatal("no cache hit through Locate (cache layer broken?)")
	}
	if !sawLocal {
		t.Fatal("LocateLocal never reported FromCache — the field is being dropped")
	}
}
